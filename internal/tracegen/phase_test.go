package tracegen

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

// countWrites drains n ops and returns the write fraction.
func countWrites(t *testing.T, g *Generator, n int) float64 {
	t.Helper()
	writes := 0
	for i := 0; i < n; i++ {
		op, ok := g.Next()
		if !ok {
			t.Fatal("generator drained early")
		}
		if op.Kind == trace.Write {
			writes++
		}
	}
	return float64(writes) / float64(n)
}

func TestGeneratorSetWriteFraction(t *testing.T) {
	fs := testFileSet(t, 100000)
	cfg := defaultGenConfig(fs)
	cfg.TotalBlocks = 1 << 40 // effectively unbounded
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := countWrites(t, g, 4000)
	if math.Abs(before-0.3) > 0.03 {
		t.Fatalf("phase 1 write fraction %.3f, want ~0.30", before)
	}
	if err := g.SetWriteFraction(0.9); err != nil {
		t.Fatal(err)
	}
	after := countWrites(t, g, 4000)
	if math.Abs(after-0.9) > 0.03 {
		t.Fatalf("phase 2 write fraction %.3f, want ~0.90", after)
	}
	for _, bad := range []float64{-0.1, 1.5, math.NaN()} {
		if err := g.SetWriteFraction(bad); err == nil {
			t.Errorf("SetWriteFraction(%v) accepted", bad)
		}
	}
}

func TestGeneratorSetWorkingSetFraction(t *testing.T) {
	fs := testFileSet(t, 100000)
	cfg := defaultGenConfig(fs)
	cfg.TotalBlocks = 1 << 40
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := g.WorkingSet(0)
	inWS := func(n int) float64 {
		hits := 0
		for i := 0; i < n; i++ {
			op, ok := g.Next()
			if !ok {
				t.Fatal("generator drained early")
			}
			for _, reg := range ws.Regions {
				if op.File == reg.File && op.Block >= reg.Start && op.Block < reg.Start+reg.Blocks {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(n)
	}
	before := inWS(2000) // default locality: 80% + incidental overlap
	if before < 0.75 {
		t.Fatalf("baseline working-set fraction %.3f, want >= 0.75", before)
	}
	if err := g.SetWorkingSetFraction(0); err != nil {
		t.Fatal(err)
	}
	// Whole-server draws still overlap the (popularity-sampled) working
	// set incidentally, but far less than targeted draws.
	after := inWS(2000)
	if after > before-0.15 {
		t.Fatalf("working-set fraction %.3f -> %.3f; expected a clear drop", before, after)
	}
	if err := g.SetWorkingSetFraction(math.NaN()); err == nil {
		t.Error("NaN accepted")
	}
}

func TestGeneratorSetActiveThreads(t *testing.T) {
	fs := testFileSet(t, 100000)
	cfg := defaultGenConfig(fs)
	cfg.TotalBlocks = 1 << 40
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetActiveThreads(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		op, _ := g.Next()
		if op.Thread >= 2 {
			t.Fatalf("op on thread %d with 2 active threads", op.Thread)
		}
	}
	// Raising past the initial count is allowed: thread IDs are logical.
	if err := g.SetActiveThreads(32); err != nil {
		t.Fatal(err)
	}
	seen := map[uint16]bool{}
	for i := 0; i < 4000; i++ {
		op, _ := g.Next()
		seen[op.Thread] = true
	}
	if len(seen) < 24 {
		t.Fatalf("only %d threads seen after raising to 32", len(seen))
	}
	if err := g.SetActiveThreads(0); err == nil {
		t.Error("SetActiveThreads(0) accepted")
	}
}

func TestGeneratorSetSharedWorkingSet(t *testing.T) {
	fs := testFileSet(t, 200000)
	cfg := defaultGenConfig(fs)
	cfg.Hosts = 2
	cfg.TotalBlocks = 1 << 40
	g, err := NewGenerator(cfg) // private sets
	if err != nil {
		t.Fatal(err)
	}
	if g.WorkingSet(0) == g.WorkingSet(1) {
		t.Fatal("private sets alias")
	}
	if err := g.SetSharedWorkingSet(true); err != nil {
		t.Fatal(err)
	}
	if g.WorkingSet(0) != g.WorkingSet(1) {
		t.Fatal("shared mode still private")
	}
	if err := g.SetSharedWorkingSet(false); err != nil {
		t.Fatal(err) // per-host sets exist, switching back is fine
	}

	// A generator born shared cannot go private.
	cfg.SharedWorkingSet = true
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.SetSharedWorkingSet(false); err == nil {
		t.Error("shared-born generator switched to private")
	}
}

func TestShiftWorkingSet(t *testing.T) {
	fs := testFileSet(t, 400000)
	r := rng.New(9)
	ws, err := fs.SampleWorkingSet(r, 20000, 64)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := fs.ShiftWorkingSet(r, ws, 0.5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if shifted == ws {
		t.Fatal("shift returned the same set")
	}
	if shifted.TotalBlocks < ws.TotalBlocks || shifted.TotalBlocks > ws.TotalBlocks+1000 {
		t.Fatalf("shifted size %d, want ~%d", shifted.TotalBlocks, ws.TotalBlocks)
	}
	// Measure block overlap: ~half the volume should be retained.
	old := map[uint64]bool{}
	for _, reg := range ws.Regions {
		for b := uint32(0); b < reg.Blocks; b++ {
			old[trace.BlockKey(reg.File, reg.Start+b)] = true
		}
	}
	var kept int64
	for _, reg := range shifted.Regions {
		for b := uint32(0); b < reg.Blocks; b++ {
			if old[trace.BlockKey(reg.File, reg.Start+b)] {
				kept++
			}
		}
	}
	frac := float64(kept) / float64(ws.TotalBlocks)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("retained fraction %.3f after 0.5 shift, want ~0.5", frac)
	}

	if _, err := fs.ShiftWorkingSet(r, ws, 1.5, 64); err == nil {
		t.Error("shift fraction 1.5 accepted")
	}
}

func TestGeneratorShiftWorkingSetsDeterministic(t *testing.T) {
	fs := testFileSet(t, 400000)
	run := func() []trace.Op {
		cfg := defaultGenConfig(fs)
		cfg.TotalBlocks = 1 << 40
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ops []trace.Op
		for i := 0; i < 500; i++ {
			op, _ := g.Next()
			ops = append(ops, op)
		}
		if err := g.ShiftWorkingSets(0.4); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			op, _ := g.Next()
			ops = append(ops, op)
		}
		return ops
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
