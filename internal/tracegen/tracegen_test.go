package tracegen

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

func testFileSet(t *testing.T, total int64) *FileSet {
	t.Helper()
	cfg := DefaultFileSetConfig(total)
	fs, err := GenerateFileSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFileSetTotalSize(t *testing.T) {
	fs := testFileSet(t, 100000)
	if fs.TotalBlocks < 100000 {
		t.Fatalf("total %d below target", fs.TotalBlocks)
	}
	// Overshoot is bounded by the largest single file (capped at 1/8).
	if fs.TotalBlocks > 100000+100000/8+1 {
		t.Fatalf("total %d overshoots wildly", fs.TotalBlocks)
	}
	var sum int64
	for _, f := range fs.Files {
		if f.Blocks == 0 {
			t.Fatal("zero-size file")
		}
		if f.Popularity < 1 || f.Popularity > 20 {
			t.Fatalf("popularity %d out of range", f.Popularity)
		}
		sum += int64(f.Blocks)
	}
	if sum != fs.TotalBlocks {
		t.Fatal("recorded total does not match file sum")
	}
}

func TestFileSetDeterministic(t *testing.T) {
	a := testFileSet(t, 50000)
	b := testFileSet(t, 50000)
	if a.NumFiles() != b.NumFiles() {
		t.Fatal("same seed, different file counts")
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs", i)
		}
	}
}

func TestFileSetSizeDistributionSkewed(t *testing.T) {
	fs := testFileSet(t, 200000)
	// Median should be well below mean for a lognormal+Pareto mix.
	sizes := make([]int, len(fs.Files))
	var sum float64
	for i, f := range fs.Files {
		sizes[i] = int(f.Blocks)
		sum += float64(f.Blocks)
	}
	mean := sum / float64(len(sizes))
	below := 0
	for _, s := range sizes {
		if float64(s) < mean {
			below++
		}
	}
	frac := float64(below) / float64(len(sizes))
	if frac < 0.6 {
		t.Fatalf("only %.2f of files below mean; distribution not right-skewed", frac)
	}
}

func TestFileSetConfigValidation(t *testing.T) {
	bad := []FileSetConfig{
		{TotalBlocks: 0, MeanFileBlocks: 4, MaxPopularity: 5},
		{TotalBlocks: 100, MeanFileBlocks: 0, MaxPopularity: 5},
		{TotalBlocks: 100, MeanFileBlocks: 4, TailFraction: 0.9, MaxPopularity: 5},
		{TotalBlocks: 100, MeanFileBlocks: 4, MaxPopularity: 0},
	}
	for i, cfg := range bad {
		if _, err := GenerateFileSet(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSampleFilePopularityBias(t *testing.T) {
	fs := testFileSet(t, 100000)
	r := rng.New(7)
	counts := make(map[uint32]int)
	for i := 0; i < 50000; i++ {
		counts[fs.SampleFile(r).ID]++
	}
	// Average draw rate of popularity >= 10 files should exceed that of
	// popularity 1 files.
	var hiSum, hiN, loSum, loN float64
	for _, f := range fs.Files {
		c := float64(counts[f.ID])
		if f.Popularity >= 10 {
			hiSum += c
			hiN++
		} else if f.Popularity == 1 {
			loSum += c
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("degenerate popularity split")
	}
	if hiSum/hiN <= loSum/loN {
		t.Fatalf("popular files not drawn more often: hi %.2f lo %.2f", hiSum/hiN, loSum/loN)
	}
}

func TestWorkingSetSize(t *testing.T) {
	fs := testFileSet(t, 100000)
	r := rng.New(3)
	ws, err := fs.SampleWorkingSet(r, 20000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ws.TotalBlocks != 20000 {
		t.Fatalf("working set %d blocks, want exactly 20000 (last region clamped)", ws.TotalBlocks)
	}
	for _, reg := range ws.Regions {
		if reg.Blocks == 0 {
			t.Fatal("empty region")
		}
		// Region must lie within its file.
		var f *File
		for i := range fs.Files {
			if fs.Files[i].ID == reg.File {
				f = &fs.Files[i]
				break
			}
		}
		if f == nil {
			t.Fatalf("region references unknown file %d", reg.File)
		}
		if reg.Start+reg.Blocks > f.Blocks {
			t.Fatalf("region [%d,%d) exceeds file size %d", reg.Start, reg.Start+reg.Blocks, f.Blocks)
		}
	}
}

func TestWorkingSetTooLarge(t *testing.T) {
	fs := testFileSet(t, 1000)
	if _, err := fs.SampleWorkingSet(rng.New(1), 10000, 64); err == nil {
		t.Fatal("oversized working set accepted")
	}
}

func TestWorkingSetUniqueBlocks(t *testing.T) {
	fs := testFileSet(t, 50000)
	ws, err := fs.SampleWorkingSet(rng.New(5), 10000, 64)
	if err != nil {
		t.Fatal(err)
	}
	uniq := ws.UniqueBlocks()
	if uniq <= 0 || uniq > ws.TotalBlocks {
		t.Fatalf("unique blocks %d out of range (total %d)", uniq, ws.TotalBlocks)
	}
	// Overlap should be modest: most of the set is distinct data.
	if float64(uniq) < 0.5*float64(ws.TotalBlocks) {
		t.Fatalf("working set is mostly overlap: %d unique of %d", uniq, ws.TotalBlocks)
	}
}

func defaultGenConfig(fs *FileSet) Config {
	return Config{
		Seed:               1,
		Hosts:              1,
		ThreadsPerHost:     8,
		WorkingSetBlocks:   10000,
		WorkingSetFraction: 0.8,
		WriteFraction:      0.3,
		MeanIOBlocks:       4,
		FileSet:            fs,
	}
}

func TestGeneratorVolumeAndDefaults(t *testing.T) {
	fs := testFileSet(t, 100000)
	g, err := NewGenerator(defaultGenConfig(fs))
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalBlocks() != 40000 {
		t.Fatalf("default volume %d, want 4x working set", g.TotalBlocks())
	}
	if g.WarmupBlocks() != 20000 {
		t.Fatalf("warmup %d, want half", g.WarmupBlocks())
	}
	var vol int64
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if err := op.Validate(); err != nil {
			t.Fatal(err)
		}
		vol += int64(op.Count)
	}
	if vol < 40000 || vol > 40000+1000 {
		t.Fatalf("emitted %d blocks, want ~40000", vol)
	}
}

func TestGeneratorWriteFraction(t *testing.T) {
	fs := testFileSet(t, 100000)
	cfg := defaultGenConfig(fs)
	cfg.WriteFraction = 0.3
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Collect(g)
	frac := float64(st.WriteOps) / float64(st.Ops)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("write fraction %.3f, want ~0.30", frac)
	}
}

func TestGeneratorHostThreadUniform(t *testing.T) {
	fs := testFileSet(t, 100000)
	cfg := defaultGenConfig(fs)
	cfg.Hosts = 4
	cfg.ThreadsPerHost = 4
	cfg.TotalBlocks = 200000
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hostCount := make([]int, 4)
	total := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Host >= 4 || op.Thread >= 4 {
			t.Fatalf("op outside host/thread range: %v", op)
		}
		hostCount[op.Host]++
		total++
	}
	for h, c := range hostCount {
		frac := float64(c) / float64(total)
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("host %d got %.3f of ops, want ~0.25", h, frac)
		}
	}
}

func TestGeneratorWorkingSetLocality(t *testing.T) {
	// With an 80% working-set fraction and a working set much smaller
	// than the file server, most I/O blocks must fall inside the set.
	fs := testFileSet(t, 200000)
	cfg := defaultGenConfig(fs)
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inSet := make(map[uint64]bool)
	ws := g.WorkingSet(0)
	for _, reg := range ws.Regions {
		for b := uint32(0); b < reg.Blocks; b++ {
			inSet[trace.BlockKey(reg.File, reg.Start+b)] = true
		}
	}
	var hits, blocks int64
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		for b := uint32(0); b < op.Count; b++ {
			if inSet[trace.BlockKey(op.File, op.Block+b)] {
				hits++
			}
			blocks++
		}
	}
	frac := float64(hits) / float64(blocks)
	if frac < 0.7 {
		t.Fatalf("only %.2f of blocks inside working set, want >= ~0.8 minus tail overlap", frac)
	}
}

func TestGeneratorSharedWorkingSet(t *testing.T) {
	fs := testFileSet(t, 100000)
	cfg := defaultGenConfig(fs)
	cfg.Hosts = 2
	cfg.SharedWorkingSet = true
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.WorkingSet(0) != g.WorkingSet(1) {
		t.Fatal("shared working set differs across hosts")
	}
	if g.TotalBlocks() != 40000 {
		t.Fatalf("shared volume %d, want 4x one working set", g.TotalBlocks())
	}
}

func TestGeneratorSeparateWorkingSets(t *testing.T) {
	fs := testFileSet(t, 100000)
	cfg := defaultGenConfig(fs)
	cfg.Hosts = 2
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.WorkingSet(0) == g.WorkingSet(1) {
		t.Fatal("separate hosts share a working set")
	}
	if g.TotalBlocks() != 80000 {
		t.Fatalf("volume %d, want 4x aggregate working sets", g.TotalBlocks())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	fs := testFileSet(t, 100000)
	g1, _ := NewGenerator(defaultGenConfig(fs))
	g2, _ := NewGenerator(defaultGenConfig(fs))
	for i := 0; i < 5000; i++ {
		op1, ok1 := g1.Next()
		op2, ok2 := g2.Next()
		if ok1 != ok2 || op1 != op2 {
			t.Fatalf("divergence at op %d: %v vs %v", i, op1, op2)
		}
		if !ok1 {
			break
		}
	}
}

func TestGeneratorConfigValidation(t *testing.T) {
	fs := testFileSet(t, 10000)
	bad := []Config{
		{FileSet: nil, Hosts: 1, ThreadsPerHost: 1, WorkingSetBlocks: 10},
		{FileSet: fs, Hosts: 0, ThreadsPerHost: 1, WorkingSetBlocks: 10},
		{FileSet: fs, Hosts: 1, ThreadsPerHost: 0, WorkingSetBlocks: 10},
		{FileSet: fs, Hosts: 1, ThreadsPerHost: 1, WorkingSetBlocks: 0},
		{FileSet: fs, Hosts: 1, ThreadsPerHost: 1, WorkingSetBlocks: 10, WriteFraction: 1.5},
		{FileSet: fs, Hosts: 1, ThreadsPerHost: 1, WorkingSetBlocks: 10, WorkingSetFraction: -1},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGeneratorOpsWithinFiles(t *testing.T) {
	fs := testFileSet(t, 50000)
	sizes := map[uint32]uint32{}
	for _, f := range fs.Files {
		sizes[f.ID] = f.Blocks
	}
	g, err := NewGenerator(defaultGenConfig(fs))
	if err != nil {
		t.Fatal(err)
	}
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		size, exists := sizes[op.File]
		if !exists {
			t.Fatalf("op references unknown file: %v", op)
		}
		if op.Block+op.Count > size {
			t.Fatalf("op exceeds file size %d: %v", size, op)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	fs, err := GenerateFileSet(DefaultFileSetConfig(500000))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Seed: 1, Hosts: 1, ThreadsPerHost: 8,
		WorkingSetBlocks: 100000, WorkingSetFraction: 0.8,
		WriteFraction: 0.3, TotalBlocks: 1 << 40, FileSet: fs,
	}
	g, err := NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
