// Package tracegen generates the synthetic block-level traces used for the
// paper's analysis (§4). The pipeline mirrors the paper's generator: an
// Impressions-style file-server model supplies a list of files and sizes;
// working sets are sampled from it weighted by Zipfian small-integer
// popularities; I/O requests are sampled from the working set (80% by
// default) or the whole file server (the rest), with Poisson sizes clamped
// to the file, uniform starting points, and uniform distribution over hosts
// and threads.
package tracegen

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/trace"
)

// File is one file in the server model.
type File struct {
	ID         uint32
	Blocks     uint32 // size in 4 KiB blocks
	Popularity int    // small integer weight, Zipf-distributed
}

// FileSet is the file-server model: a population of files whose total size
// and size distribution mimic the Impressions generator used by the paper.
type FileSet struct {
	Files       []File
	TotalBlocks int64

	cumPop []float64 // cumulative popularity weights for sampling
}

// FileSetConfig controls synthesis of the server model.
type FileSetConfig struct {
	// TotalBlocks is the target aggregate size (the paper uses a 1.4 TB
	// model; at 4 KiB blocks that is 367,001,600 blocks, usually scaled).
	TotalBlocks int64
	// MeanFileBlocks sets the lognormal body's mean file size in blocks.
	// Impressions' 2009 defaults have a median around a few KiB with a
	// heavy tail; we default the body median to 16 blocks (64 KiB) and
	// mix in a Pareto tail.
	MeanFileBlocks float64
	// TailFraction of files draw from a Pareto tail of large files.
	TailFraction float64
	// MaxPopularity bounds the small-integer Zipfian popularity.
	MaxPopularity int
	Seed          uint64
}

// DefaultFileSetConfig returns the configuration used by the experiment
// harness for a given total size.
func DefaultFileSetConfig(totalBlocks int64) FileSetConfig {
	return FileSetConfig{
		TotalBlocks:    totalBlocks,
		MeanFileBlocks: 64, // 256 KiB mean body size
		TailFraction:   0.02,
		MaxPopularity:  20,
		Seed:           42,
	}
}

// GenerateFileSet synthesises the server model.
func GenerateFileSet(cfg FileSetConfig) (*FileSet, error) {
	if cfg.TotalBlocks <= 0 {
		return nil, fmt.Errorf("tracegen: total blocks must be positive")
	}
	if cfg.MeanFileBlocks < 1 {
		return nil, fmt.Errorf("tracegen: mean file size must be >= 1 block")
	}
	if cfg.TailFraction < 0 || cfg.TailFraction > 0.5 {
		return nil, fmt.Errorf("tracegen: tail fraction out of range")
	}
	if cfg.MaxPopularity < 1 {
		return nil, fmt.Errorf("tracegen: max popularity must be >= 1")
	}
	r := rng.New(cfg.Seed)
	fs := &FileSet{}
	// Lognormal body: choose sigma 1.2 (heavy but not extreme spread) and
	// derive mu from the requested mean: mean = exp(mu + sigma^2/2).
	const sigma = 1.2
	mu := math.Log(cfg.MeanFileBlocks) - sigma*sigma/2
	var id uint32
	for fs.TotalBlocks < cfg.TotalBlocks {
		var blocks float64
		if r.Bool(cfg.TailFraction) {
			// Pareto tail: large files starting at 32x the mean.
			blocks = r.Pareto(cfg.MeanFileBlocks*32, 1.3)
		} else {
			blocks = r.LogNormal(mu, sigma)
		}
		if blocks < 1 {
			blocks = 1
		}
		// Cap single files at 1/8 of the server so one draw cannot
		// dominate a small scaled-down model.
		if cap := float64(cfg.TotalBlocks) / 8; blocks > cap && cap >= 1 {
			blocks = cap
		}
		f := File{
			ID:         id,
			Blocks:     uint32(blocks),
			Popularity: rng.SmallZipfPopularity(r, cfg.MaxPopularity, 1.2),
		}
		id++
		fs.Files = append(fs.Files, f)
		fs.TotalBlocks += int64(f.Blocks)
	}
	fs.buildIndex()
	return fs, nil
}

func (fs *FileSet) buildIndex() {
	fs.cumPop = make([]float64, len(fs.Files))
	sum := 0.0
	for i, f := range fs.Files {
		sum += float64(f.Popularity)
		fs.cumPop[i] = sum
	}
}

// SampleFile draws a file weighted by popularity.
func (fs *FileSet) SampleFile(r *rng.RNG) *File {
	total := fs.cumPop[len(fs.cumPop)-1]
	u := r.Float64() * total
	lo, hi := 0, len(fs.cumPop)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if fs.cumPop[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &fs.Files[lo]
}

// NumFiles returns the population size.
func (fs *FileSet) NumFiles() int { return len(fs.Files) }

// Region is a contiguous block range within one file.
type Region struct {
	File   uint32
	Start  uint32
	Blocks uint32
	Weight float64 // sampling weight (popularity of the owning file)
}

// WorkingSet is a set of file subregions totalling roughly a target size,
// sampled from the file server model as the paper's generator does.
type WorkingSet struct {
	Regions     []Region
	TotalBlocks int64

	cum []float64
}

// SampleWorkingSet draws subregions (uniform start, Poisson length clamped
// to the file) from popularity-weighted files until the target size is
// reached.
func (fs *FileSet) SampleWorkingSet(r *rng.RNG, targetBlocks int64, meanRegionBlocks float64) (*WorkingSet, error) {
	if targetBlocks <= 0 {
		return nil, fmt.Errorf("tracegen: working set target must be positive")
	}
	if targetBlocks > fs.TotalBlocks {
		return nil, fmt.Errorf("tracegen: working set %d exceeds file server %d blocks",
			targetBlocks, fs.TotalBlocks)
	}
	if meanRegionBlocks < 1 {
		meanRegionBlocks = 1
	}
	ws := &WorkingSet{}
	fs.appendRegions(r, ws, make(map[uint32][]Region), targetBlocks, meanRegionBlocks)
	ws.buildIndex()
	return ws, nil
}

// appendRegions grows ws with freshly sampled regions (disjoint from those
// recorded in used) until it covers targetBlocks. It is the sampling core
// shared by SampleWorkingSet and ShiftWorkingSet.
func (fs *FileSet) appendRegions(r *rng.RNG, ws *WorkingSet, used map[uint32][]Region,
	targetBlocks int64, meanRegionBlocks float64) {
	overlaps := func(f uint32, start, n uint32) bool {
		for _, reg := range used[f] {
			if start < reg.Start+reg.Blocks && reg.Start < start+n {
				return true
			}
		}
		return false
	}
	for ws.TotalBlocks < targetBlocks {
		f := fs.SampleFile(r)
		n := uint32(r.Poisson(meanRegionBlocks))
		if n == 0 {
			n = 1
		}
		if n > f.Blocks {
			n = f.Blocks
		}
		var start uint32
		found := false
		// Keep regions disjoint within a file so the working set's
		// unique size matches its nominal size; a handful of retries
		// suffices because the set is much smaller than the file server.
		for attempt := 0; attempt < 6; attempt++ {
			if f.Blocks > n {
				start = uint32(r.Intn(int(f.Blocks - n + 1)))
			} else {
				start = 0
			}
			if !overlaps(f.ID, start, n) {
				found = true
				break
			}
		}
		if !found {
			continue // heavily covered file; sample another
		}
		remaining := targetBlocks - ws.TotalBlocks
		if int64(n) > remaining {
			n = uint32(remaining)
		}
		reg := Region{
			File:   f.ID,
			Start:  start,
			Blocks: n,
			Weight: float64(f.Popularity),
		}
		used[f.ID] = append(used[f.ID], reg)
		ws.Regions = append(ws.Regions, reg)
		ws.TotalBlocks += int64(n)
	}
}

// ShiftWorkingSet returns a new working set in which roughly fraction of
// ws's blocks have been replaced by freshly sampled regions, modeling
// working-set drift (new data becomes hot, old data goes cold). The oldest
// regions — those sampled first — are retired first, and the total size is
// preserved. ws itself is not modified.
func (fs *FileSet) ShiftWorkingSet(r *rng.RNG, ws *WorkingSet, fraction float64,
	meanRegionBlocks float64) (*WorkingSet, error) {
	if badFraction(fraction) {
		return nil, fmt.Errorf("tracegen: shift fraction %v out of [0,1]", fraction)
	}
	if meanRegionBlocks < 1 {
		meanRegionBlocks = 1
	}
	target := ws.TotalBlocks
	dropTarget := int64(fraction * float64(target))
	out := &WorkingSet{}
	used := make(map[uint32][]Region)
	var dropped int64
	for _, reg := range ws.Regions {
		if dropped < dropTarget {
			dropped += int64(reg.Blocks)
			continue
		}
		out.Regions = append(out.Regions, reg)
		out.TotalBlocks += int64(reg.Blocks)
		used[reg.File] = append(used[reg.File], reg)
	}
	fs.appendRegions(r, out, used, target, meanRegionBlocks)
	out.buildIndex()
	return out, nil
}

func (ws *WorkingSet) buildIndex() {
	ws.cum = make([]float64, len(ws.Regions))
	sum := 0.0
	for i, reg := range ws.Regions {
		// Weight regions by size only, making I/O uniform per block over
		// the working set. Popularity already shaped the set's
		// membership (popular files occupy more regions), so file-level
		// access frequency still tracks popularity, while the block-level
		// distribution stays flat — matching the paper's reported cache
		// behaviour (a constant, low RAM hit rate across configurations,
		// §7.2).
		sum += float64(reg.Blocks)
		ws.cum[i] = sum
	}
}

// SampleRegion draws a region weighted by size (see buildIndex).
func (ws *WorkingSet) SampleRegion(r *rng.RNG) *Region {
	total := ws.cum[len(ws.cum)-1]
	u := r.Float64() * total
	lo, hi := 0, len(ws.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ws.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &ws.Regions[lo]
}

// UniqueBlocks returns the number of distinct blocks covered by the working
// set (regions may overlap; used by tests and capacity planning).
func (ws *WorkingSet) UniqueBlocks() int64 {
	seen := make(map[uint64]bool)
	for _, reg := range ws.Regions {
		for b := uint32(0); b < reg.Blocks; b++ {
			seen[trace.BlockKey(reg.File, reg.Start+b)] = true
		}
	}
	return int64(len(seen))
}
