package tracegen

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Config drives trace generation. The defaults mirror the paper's baseline
// traces (§4): one host, eight threads, one working set, 80% of I/Os from
// the working set, 30% writes, volume 4x the working set with the first
// half used as warmup.
type Config struct {
	Seed uint64

	Hosts          int
	ThreadsPerHost int

	// WorkingSetBlocks is the per-working-set size. With SharedWorkingSet
	// all hosts draw from one working set (the paper's worst-case
	// consistency scenario); otherwise each host gets its own.
	WorkingSetBlocks int64
	SharedWorkingSet bool

	// WorkingSetFraction of I/Os come from the working set; the rest
	// sample the whole file server.
	WorkingSetFraction float64

	// WriteFraction of I/Os are writes.
	WriteFraction float64

	// TotalBlocks is the trace volume in blocks; zero defaults to
	// 4x the aggregate working set size.
	TotalBlocks int64

	// MeanIOBlocks is the Poisson mean request size.
	MeanIOBlocks float64

	// MeanRegionBlocks is the Poisson mean working-set region size.
	MeanRegionBlocks float64

	FileSet *FileSet
}

// Validate checks the configuration and applies defaults.
func (c *Config) Validate() error {
	if c.FileSet == nil {
		return fmt.Errorf("tracegen: nil file set")
	}
	if c.Hosts < 1 || c.Hosts > 1<<16 {
		return fmt.Errorf("tracegen: hosts %d out of range", c.Hosts)
	}
	if c.ThreadsPerHost < 1 || c.ThreadsPerHost > 1<<16 {
		return fmt.Errorf("tracegen: threads %d out of range", c.ThreadsPerHost)
	}
	if c.WorkingSetBlocks <= 0 {
		return fmt.Errorf("tracegen: working set size must be positive")
	}
	if c.WorkingSetFraction < 0 || c.WorkingSetFraction > 1 {
		return fmt.Errorf("tracegen: working set fraction out of range")
	}
	if c.WriteFraction < 0 || c.WriteFraction > 1 {
		return fmt.Errorf("tracegen: write fraction out of range")
	}
	if c.MeanIOBlocks <= 0 {
		c.MeanIOBlocks = 4
	}
	if c.MeanRegionBlocks <= 0 {
		c.MeanRegionBlocks = 64
	}
	if c.TotalBlocks <= 0 {
		sets := int64(c.Hosts)
		if c.SharedWorkingSet {
			sets = 1
		}
		c.TotalBlocks = 4 * c.WorkingSetBlocks * sets
	}
	return nil
}

// Generator streams synthetic trace operations; it implements trace.Source.
type Generator struct {
	cfg      Config
	rnd      *rng.RNG
	sets     []*WorkingSet // per host, or a single shared one
	emitted  int64         // blocks emitted so far
	warmupAt int64         // blocks after which stats should start
}

// NewGenerator samples working sets and returns a streaming generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	g := &Generator{cfg: cfg, rnd: r}
	nsets := cfg.Hosts
	if cfg.SharedWorkingSet {
		nsets = 1
	}
	for i := 0; i < nsets; i++ {
		ws, err := cfg.FileSet.SampleWorkingSet(r.Fork(), cfg.WorkingSetBlocks, cfg.MeanRegionBlocks)
		if err != nil {
			return nil, err
		}
		g.sets = append(g.sets, ws)
	}
	g.warmupAt = cfg.TotalBlocks / 2
	return g, nil
}

// WarmupBlocks returns the volume (in blocks) of the warmup prefix: half
// the trace, per the paper.
func (g *Generator) WarmupBlocks() int64 { return g.warmupAt }

// TotalBlocks returns the configured trace volume.
func (g *Generator) TotalBlocks() int64 { return g.cfg.TotalBlocks }

// WorkingSet returns host h's working set.
func (g *Generator) WorkingSet(h int) *WorkingSet {
	if g.cfg.SharedWorkingSet {
		return g.sets[0]
	}
	return g.sets[h]
}

// --- phase-aware mutation -------------------------------------------------
//
// The scenario engine reshapes a live workload between phases: the write
// mix, locality, thread population, sharing mode and working-set contents
// may all change mid-trace. Mutators take effect on the next Next call and
// draw only from the generator's own seeded stream (ShiftWorkingSets
// consumes from it; the others leave it alone), so a scenario replayed
// with the same seed and the same mutation sequence is byte-identical.

// badFraction reports a fraction outside [0,1]; NaN fails every
// comparison, so it is checked explicitly.
func badFraction(f float64) bool { return math.IsNaN(f) || f < 0 || f > 1 }

// SetWriteFraction changes the fraction of I/Os that are writes.
func (g *Generator) SetWriteFraction(f float64) error {
	if badFraction(f) {
		return fmt.Errorf("tracegen: write fraction %v out of [0,1]", f)
	}
	g.cfg.WriteFraction = f
	return nil
}

// SetWorkingSetFraction changes the fraction of I/Os drawn from the
// working set (the rest sample the whole file server).
func (g *Generator) SetWorkingSetFraction(f float64) error {
	if badFraction(f) {
		return fmt.Errorf("tracegen: working set fraction %v out of [0,1]", f)
	}
	g.cfg.WorkingSetFraction = f
	return nil
}

// SetActiveThreads changes the number of application threads issuing I/O
// per host. Raising it above the initial count is allowed: thread IDs are
// logical, so new IDs simply appear in the trace.
func (g *Generator) SetActiveThreads(n int) error {
	if n < 1 || n > 1<<16 {
		return fmt.Errorf("tracegen: threads %d out of range", n)
	}
	g.cfg.ThreadsPerHost = n
	return nil
}

// SetSharedWorkingSet switches between one shared working set (all hosts
// draw from set 0) and per-host working sets. Switching to private mode
// requires the generator to have been built with per-host sets.
func (g *Generator) SetSharedWorkingSet(shared bool) error {
	if !shared && g.cfg.Hosts > 1 && len(g.sets) < g.cfg.Hosts {
		return fmt.Errorf("tracegen: cannot switch to private working sets: generator was built shared")
	}
	g.cfg.SharedWorkingSet = shared
	return nil
}

// ShiftWorkingSets replaces roughly the given fraction of every working
// set's blocks with freshly sampled regions, modeling working-set drift.
// The sets' total sizes are preserved.
func (g *Generator) ShiftWorkingSets(fraction float64) error {
	if badFraction(fraction) {
		return fmt.Errorf("tracegen: shift fraction %v out of [0,1]", fraction)
	}
	if fraction == 0 {
		return nil
	}
	for i, ws := range g.sets {
		shifted, err := g.cfg.FileSet.ShiftWorkingSet(g.rnd, ws, fraction, g.cfg.MeanRegionBlocks)
		if err != nil {
			return err
		}
		g.sets[i] = shifted
	}
	return nil
}

// Next implements trace.Source.
func (g *Generator) Next() (trace.Op, bool) {
	if g.emitted >= g.cfg.TotalBlocks {
		return trace.Op{}, false
	}
	host := g.rnd.Intn(g.cfg.Hosts)
	thread := g.rnd.Intn(g.cfg.ThreadsPerHost)

	var file uint32
	var start, count uint32
	n := uint32(g.rnd.Poisson(g.cfg.MeanIOBlocks))
	if n == 0 {
		n = 1
	}
	if g.rnd.Bool(g.cfg.WorkingSetFraction) {
		reg := g.WorkingSet(host).SampleRegion(g.rnd)
		file = reg.File
		if n > reg.Blocks {
			n = reg.Blocks
		}
		off := uint32(0)
		if reg.Blocks > n {
			off = uint32(g.rnd.Intn(int(reg.Blocks - n + 1)))
		}
		start = reg.Start + off
		count = n
	} else {
		f := g.cfg.FileSet.SampleFile(g.rnd)
		file = f.ID
		if n > f.Blocks {
			n = f.Blocks
		}
		if f.Blocks > n {
			start = uint32(g.rnd.Intn(int(f.Blocks - n + 1)))
		}
		count = n
	}

	kind := trace.Read
	if g.rnd.Bool(g.cfg.WriteFraction) {
		kind = trace.Write
	}
	g.emitted += int64(count)
	return trace.Op{
		Host:   uint16(host),
		Thread: uint16(thread),
		Kind:   kind,
		File:   file,
		Block:  start,
		Count:  count,
	}, true
}
