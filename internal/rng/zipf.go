package rng

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the cumulative distribution and samples by
// binary search, which is fast and exact for the modest n (file and
// working-set counts) used by the trace generator.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipfian sampler over [0, n) with exponent s > 0.
// It panics if n <= 0 or s <= 0.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	if s <= 0 {
		panic("rng: NewZipf called with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: r}
}

// N returns the size of the sampled domain.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next Zipf-distributed value in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weight returns the probability mass of value i.
func (z *Zipf) Weight(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// SmallZipfPopularity draws a small integer popularity in [1, max] from a
// Zipfian distribution with exponent s, as the paper's trace generator
// assigns "small integer popularities ... generated from a Zipfian
// distribution" to files.
func SmallZipfPopularity(r *RNG, max int, s float64) int {
	if max <= 1 {
		return 1
	}
	// Inverse-power sample over [1, max].
	sum := 0.0
	for i := 1; i <= max; i++ {
		sum += 1 / math.Pow(float64(i), s)
	}
	u := r.Float64() * sum
	acc := 0.0
	for i := 1; i <= max; i++ {
		acc += 1 / math.Pow(float64(i), s)
		if u <= acc {
			return i
		}
	}
	return max
}
