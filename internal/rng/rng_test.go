package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds produced %d/1000 identical outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams produced %d/1000 identical outputs", same)
	}
}

func TestForkIndependent(t *testing.T) {
	parent := New(9)
	c1 := parent.Fork()
	c2 := parent.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint32() == c2.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked children produced %d/1000 identical outputs", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(8)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(17)
	for _, lambda := range []float64{0.5, 4, 12, 50} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
	if r.Poisson(-1) != 0 {
		t.Error("Poisson(-1) != 0")
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp(5) mean = %v", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		if r.LogNormal(1, 2) <= 0 {
			t.Fatal("lognormal variate <= 0")
		}
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(3, 1.5); v < 3 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatal("Zipf not skewed toward low ranks")
	}
	// Rank 0 should have roughly weight 1/H(100) ~= 0.192.
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.192) > 0.02 {
		t.Errorf("rank-0 mass = %v, want ~0.192", p0)
	}
}

func TestZipfRange(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 17, 0.8)
	f := func(uint32) bool {
		v := z.Next()
		return v >= 0 && v < 17
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z := NewZipf(New(41), 50, 1.2)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Weight(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestSmallZipfPopularity(t *testing.T) {
	r := New(43)
	counts := make(map[int]int)
	for i := 0; i < 50000; i++ {
		p := SmallZipfPopularity(r, 10, 1.0)
		if p < 1 || p > 10 {
			t.Fatalf("popularity out of range: %d", p)
		}
		counts[p]++
	}
	if counts[1] <= counts[10] {
		t.Fatal("popularity not skewed toward 1")
	}
	if SmallZipfPopularity(r, 1, 1.0) != 1 {
		t.Fatal("max=1 should return 1")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 10000, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
