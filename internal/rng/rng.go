// Package rng provides deterministic, portable pseudo-random number
// generation for the simulator. Every stochastic component of the system
// (trace generation, filer prefetch outcomes, SSD latency noise) draws from
// an explicitly seeded generator so that a simulation run is exactly
// reproducible from its configuration.
//
// The core generator is PCG-XSH-RR 64/32 (O'Neill 2014) seeded through
// SplitMix64, chosen over math/rand for stable cross-version output and a
// cheap Fork operation that derives statistically independent streams.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding so that nearby seeds produce unrelated streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a PCG-XSH-RR 64/32 generator. The zero value is not valid; use New.
type RNG struct {
	state uint64
	inc   uint64 // stream selector; must be odd
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *RNG {
	return NewStream(seed, 0)
}

// NewStream returns a generator seeded with seed on the given stream.
// Generators with the same seed but different streams are independent.
func NewStream(seed, stream uint64) *RNG {
	sm := seed
	r := &RNG{
		state: splitMix64(&sm),
		inc:   (splitMix64(&sm)+2*stream)*2 + 1,
	}
	// Advance past the (weak) initial state.
	r.Uint32()
	r.Uint32()
	return r
}

// Fork derives a new independent generator from r. The parent advances,
// so successive Forks yield distinct children.
func (r *RNG) Fork() *RNG {
	seed := uint64(r.Uint32())<<32 | uint64(r.Uint32())
	stream := uint64(r.Uint32())
	return NewStream(seed, stream)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to avoid modulo bias.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns a lognormal variate with the given parameters of the
// underlying normal distribution.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto variate with minimum xm and shape alpha.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	// Inverse transform: xm / U^(1/alpha); guard against U == 0.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson variate with mean lambda. For small lambda it
// uses Knuth's product method; for large lambda the PTRS transformed
// rejection method would be preferable, but the simulator only draws I/O
// sizes with small means, so a normal approximation suffices above 30.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		v := math.Floor(lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5)
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}
