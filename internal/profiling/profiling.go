// Package profiling implements the -cpuprofile / -memprofile flag
// behavior shared by the CLIs, so hot-path work is measurable without
// editing code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// active finalizes the current Start call's profiles; Flush runs it on
// error exits, where os.Exit would otherwise skip the deferred stop and
// leave a trailerless (unparseable) CPU profile.
var active func()

// Start begins CPU profiling (when cpu is non-empty) and returns the
// function that stops it and writes the heap profile (when mem is
// non-empty). Callers defer the returned function around their main body;
// it is idempotent, so fatal-error paths can also finalize early via
// Flush. errPrefix names the program in failure messages. Any profiling
// error is fatal — a requested-but-broken profile is worse than a loud
// exit.
func Start(cpu, mem, errPrefix string) func() {
	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", errPrefix, err)
			os.Exit(1)
		}
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		fail(err)
		fail(pprof.StartCPUProfile(f))
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		active = nil
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			fail(err)
			runtime.GC() // settle the heap so the profile shows retention
			fail(pprof.WriteHeapProfile(f))
			fail(f.Close())
		}
	}
	active = stop
	return stop
}

// Flush finalizes any in-progress profiles. Fatal-error paths call it
// right before os.Exit; without an active Start it does nothing.
func Flush() {
	if active != nil {
		active()
	}
}
