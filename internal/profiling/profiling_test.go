package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")

	stop := Start(cpu, mem, "test")
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()

	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	if active != nil {
		t.Error("active finalizer not cleared after stop")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	mem := filepath.Join(dir, "mem.prof")
	stop := Start("", mem, "test")
	stop()
	st1, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	// A second stop must not rewrite (or truncate) the heap profile.
	stop()
	st2, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Size() != st2.Size() || !st1.ModTime().Equal(st2.ModTime()) {
		t.Error("second stop rewrote the profile")
	}
}

// Flush is the error-exit salvage path: die() calls it before os.Exit so a
// requested CPU profile gets its trailer even though the deferred stop
// never runs.
func TestFlushSalvagesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	_ = Start(cpu, "", "test") // deliberately discard the stop func
	Flush()
	st, err := os.Stat(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Error("salvaged CPU profile is empty (missing trailer)")
	}
	if active != nil {
		t.Error("active finalizer not cleared by Flush")
	}
	// With nothing active, Flush is a no-op.
	Flush()
}

func TestStartWithNoProfilesIsNoop(t *testing.T) {
	stop := Start("", "", "test")
	stop()
	Flush()
}
