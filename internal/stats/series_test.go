package stats

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTimeSeriesAppendAndAccess(t *testing.T) {
	ts := NewTimeSeries("probe", "a", "b")
	ts.Append(0.5, []float64{1, 2})
	ts.Append(1.0, []float64{3, 4})
	if ts.Len() != 2 || ts.NumColumns() != 2 {
		t.Fatalf("len=%d cols=%d", ts.Len(), ts.NumColumns())
	}
	if ts.Time(1) != 1.0 || ts.Row(1)[0] != 3 || ts.Row(1)[1] != 4 {
		t.Fatalf("row 1 = t=%v %v", ts.Time(1), ts.Row(1))
	}
	if ts.ColumnIndex("b") != 1 || ts.ColumnIndex("zz") != -1 {
		t.Fatal("column index lookup broken")
	}
	col := ts.Column("a", nil)
	if len(col) != 2 || col[0] != 1 || col[1] != 3 {
		t.Fatalf("column a = %v", col)
	}
}

func TestTimeSeriesAppendWrongWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong row width")
		}
	}()
	ts := NewTimeSeries("probe", "a", "b")
	ts.Append(0, []float64{1})
}

func TestTimeSeriesCSVAndNDJSON(t *testing.T) {
	ts := NewTimeSeries("probe", "hit", "lat")
	ts.Append(0.25, []float64{0.5, 120})
	ts.Append(0.5, []float64{0.75, 80.5})

	csv := ts.CSV()
	wantCSV := "# probe\ntime_s,hit,lat\n0.25,0.5,120\n0.5,0.75,80.5\n"
	if csv != wantCSV {
		t.Errorf("CSV:\ngot  %q\nwant %q", csv, wantCSV)
	}

	nd := ts.NDJSON()
	wantND := `{"t":0.25,"hit":0.5,"lat":120}` + "\n" + `{"t":0.5,"hit":0.75,"lat":80.5}` + "\n"
	if nd != wantND {
		t.Errorf("NDJSON:\ngot  %q\nwant %q", nd, wantND)
	}
	if strings.Count(nd, "\n") != ts.Len() {
		t.Error("NDJSON line count != rows")
	}
}

// TestAppendRowNDJSON locks the single-row encoder the daemon streams
// with: each emitted object must be byte-identical to the corresponding
// WriteNDJSON line.
func TestAppendRowNDJSON(t *testing.T) {
	ts := NewTimeSeries("probe", "hit", "lat")
	ts.Append(0.25, []float64{0.5, 120})
	ts.Append(0.5, []float64{0.75, 80.5})
	var want []string
	for _, line := range strings.Split(strings.TrimSuffix(ts.NDJSON(), "\n"), "\n") {
		want = append(want, line)
	}
	for i := 0; i < ts.Len(); i++ {
		got := string(AppendRowNDJSON(nil, ts.Columns(), ts.Time(i), ts.Row(i)))
		if got != want[i] {
			t.Errorf("row %d: got %q, want %q", i, got, want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong row width")
		}
	}()
	AppendRowNDJSON(nil, []string{"a", "b"}, 0, []float64{1})
}

func TestSamplerTicks(t *testing.T) {
	var eng sim.Engine
	ts := NewTimeSeries("probe", "x")
	n := 0
	NewSampler(&eng, 10*sim.Millisecond, ts, func(now sim.Time, row []float64) {
		n++
		row[0] = float64(n)
	})
	// Ticks are daemons: keep a foreground event stream alive past 5 ticks.
	for i := 1; i <= 55; i++ {
		eng.Schedule(sim.Time(i)*sim.Millisecond, func() {})
	}
	eng.Run()
	if ts.Len() != 5 {
		t.Fatalf("got %d samples, want 5", ts.Len())
	}
	if ts.Time(0) != 0.01 || ts.Row(4)[0] != 5 {
		t.Fatalf("sample contents wrong: t0=%v last=%v", ts.Time(0), ts.Row(4))
	}
}

// The scenario acceptance contract: at steady state (backing arrays at
// their high-water mark) one telemetry tick allocates nothing.
func TestSamplerTickAllocationFree(t *testing.T) {
	var eng sim.Engine
	ts := NewTimeSeries("probe", "a", "b", "c", "d", "e", "f", "g")
	s := NewSampler(&eng, sim.Millisecond, ts, func(now sim.Time, row []float64) {
		for i := range row {
			row[i] = float64(i) + now.Seconds()
		}
	})
	ts.Reserve(4096)
	allocs := testing.AllocsPerRun(1000, s.Sample)
	if allocs != 0 {
		t.Errorf("Sample allocated %v per tick at steady state, want 0", allocs)
	}

	// Through the engine: tick + rearm must also be allocation-free.
	for i := 0; i < 64; i++ {
		eng.Schedule(sim.Time(i+1)*sim.Millisecond, func() {})
	}
	eng.Run()
	base := ts.Len()
	allocs = testing.AllocsPerRun(1000, func() {
		eng.Schedule(sim.Millisecond, noopFn)
		eng.Run()
	})
	if allocs != 0 {
		t.Errorf("engine-driven tick allocated %v per run, want 0", allocs)
	}
	if ts.Len() <= base {
		t.Fatal("engine-driven ticks did not sample")
	}
}

func noopFn() {}
