package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// TimeSeries is a time-resolved telemetry table: a shared time column plus
// a fixed set of named value columns, one row per sample. It is the
// exportable product of the scenario engine's telemetry probe — per-interval
// hit rates, latencies, queue depths, dirty-block counts — and renders as
// CSV or NDJSON.
//
// Storage is a single flat float64 slice (row-major), so appending a row
// within the reserved capacity allocates nothing; the sampling hot path
// stays allocation-free once the backing arrays reach their high-water
// mark (or after an explicit Reserve).
type TimeSeries struct {
	name    string
	columns []string
	times   []float64
	values  []float64 // len(times) * len(columns), row-major
}

// NewTimeSeries returns an empty series with the given value columns (the
// time column is implicit and always first in exports).
func NewTimeSeries(name string, columns ...string) *TimeSeries {
	if len(columns) == 0 {
		panic("stats: time series needs at least one column")
	}
	return &TimeSeries{name: name, columns: append([]string(nil), columns...)}
}

// Name returns the series name.
func (ts *TimeSeries) Name() string { return ts.name }

// Columns returns the value column names.
func (ts *TimeSeries) Columns() []string { return append([]string(nil), ts.columns...) }

// NumColumns returns the number of value columns.
func (ts *TimeSeries) NumColumns() int { return len(ts.columns) }

// Len returns the number of rows.
func (ts *TimeSeries) Len() int { return len(ts.times) }

// Reserve grows the backing arrays to hold at least rows rows, so that
// the next (rows - Len()) appends allocate nothing.
func (ts *TimeSeries) Reserve(rows int) {
	if cap(ts.times) < rows {
		t := make([]float64, len(ts.times), rows)
		copy(t, ts.times)
		ts.times = t
	}
	if want := rows * len(ts.columns); cap(ts.values) < want {
		v := make([]float64, len(ts.values), want)
		copy(v, ts.values)
		ts.values = v
	}
}

// Append adds one sample row. row must have exactly NumColumns values; the
// contents are copied, so callers may reuse the slice.
func (ts *TimeSeries) Append(t float64, row []float64) {
	if len(row) != len(ts.columns) {
		panic(fmt.Sprintf("stats: row has %d values, series has %d columns", len(row), len(ts.columns)))
	}
	ts.times = append(ts.times, t)
	ts.values = append(ts.values, row...)
}

// Time returns row i's timestamp.
func (ts *TimeSeries) Time(i int) float64 { return ts.times[i] }

// Row returns row i's values as a read-only view into the series storage.
func (ts *TimeSeries) Row(i int) []float64 {
	n := len(ts.columns)
	return ts.values[i*n : (i+1)*n]
}

// ColumnIndex returns the index of the named column, or -1.
func (ts *TimeSeries) ColumnIndex(name string) int {
	for i, c := range ts.columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Column appends the named column's values to dst and returns it.
func (ts *TimeSeries) Column(name string, dst []float64) []float64 {
	ci := ts.ColumnIndex(name)
	if ci < 0 {
		return dst
	}
	for i := 0; i < ts.Len(); i++ {
		dst = append(dst, ts.Row(i)[ci])
	}
	return dst
}

// appendFloat renders v with the shortest round-trip representation, the
// deterministic format shared by both exporters.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// WriteCSV renders the series as CSV: a comment line with the name, a
// header (time_s first), then one row per sample.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	var b []byte
	b = append(b, "# "...)
	b = append(b, ts.name...)
	b = append(b, "\ntime_s"...)
	for _, c := range ts.columns {
		b = append(b, ',')
		b = append(b, c...)
	}
	b = append(b, '\n')
	for i := range ts.times {
		b = appendFloat(b, ts.times[i])
		for _, v := range ts.Row(i) {
			b = append(b, ',')
			b = appendFloat(b, v)
		}
		b = append(b, '\n')
	}
	_, err := w.Write(b)
	return err
}

// CSV renders the series as a CSV string.
func (ts *TimeSeries) CSV() string {
	var sb strings.Builder
	ts.WriteCSV(&sb) // strings.Builder never errors
	return sb.String()
}

// AppendRowNDJSON appends one sample row as a JSON object — "t" first,
// then the columns in declaration order, every float in the shortest
// round-trip representation — and returns the extended buffer. It is the
// single row encoder behind both the batch NDJSON export and the daemon's
// live telemetry stream, so the two renderings of the same run are
// byte-identical. No trailing newline is appended; row must have exactly
// len(columns) values.
func AppendRowNDJSON(dst []byte, columns []string, t float64, row []float64) []byte {
	if len(row) != len(columns) {
		panic(fmt.Sprintf("stats: row has %d values, %d columns", len(row), len(columns)))
	}
	dst = append(dst, `{"t":`...)
	dst = appendFloat(dst, t)
	for j, v := range row {
		dst = append(dst, ',', '"')
		dst = append(dst, columns[j]...)
		dst = append(dst, '"', ':')
		dst = appendFloat(dst, v)
	}
	return append(dst, '}')
}

// WriteNDJSON renders the series as newline-delimited JSON, one object per
// sample with "t" first and then the columns in declaration order.
func (ts *TimeSeries) WriteNDJSON(w io.Writer) error {
	var b []byte
	for i := range ts.times {
		b = AppendRowNDJSON(b, ts.columns, ts.times[i], ts.Row(i))
		b = append(b, '\n')
	}
	_, err := w.Write(b)
	return err
}

// NDJSON renders the series as an NDJSON string.
func (ts *TimeSeries) NDJSON() string {
	var sb strings.Builder
	ts.WriteNDJSON(&sb)
	return sb.String()
}

// Sampler drives periodic telemetry collection: every period of simulated
// time it calls fill to populate one row and appends it to the series. The
// row buffer is owned by the sampler and reused, so a tick performs no
// allocation once the series' backing arrays have reached their high-water
// mark (see TimeSeries.Reserve).
//
// The underlying ticker is a daemon: ticks fire while foreground events
// advance the clock but do not by themselves keep the engine alive.
type Sampler struct {
	eng    *sim.Engine
	ts     *TimeSeries
	fill   func(now sim.Time, row []float64)
	row    []float64
	ticker *sim.Ticker
}

// NewSampler arms a sampler on the engine. fill receives the current
// simulated time and the reusable row buffer (len == ts.NumColumns()); it
// must overwrite every element.
func NewSampler(eng *sim.Engine, period sim.Time, ts *TimeSeries, fill func(now sim.Time, row []float64)) *Sampler {
	s := &Sampler{
		eng:  eng,
		ts:   ts,
		fill: fill,
		row:  make([]float64, ts.NumColumns()),
	}
	s.ticker = sim.NewTicker(eng, period, s.Sample)
	return s
}

// Sample takes one snapshot immediately: fill populates the row, which is
// appended at the engine's current time. The ticker calls this every
// period; callers may also invoke it directly (e.g. one final sample at
// the end of a run).
func (s *Sampler) Sample() {
	now := s.eng.Now()
	s.fill(now, s.row)
	s.ts.Append(now.Seconds(), s.row)
}

// Stop cancels future ticks.
func (s *Sampler) Stop() { s.ticker.Stop() }

// Series returns the series being filled.
func (s *Sampler) Series() *TimeSeries { return s.ts }
