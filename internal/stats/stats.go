// Package stats provides the measurement substrate: latency accumulators,
// log-scaled histograms, and series containers used by the experiment
// harness to emit the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// LatencyAccum accumulates a stream of latencies.
type LatencyAccum struct {
	count    uint64
	sum      sim.Time
	min, max sim.Time
}

// Add records one sample.
func (a *LatencyAccum) Add(t sim.Time) {
	if a.count == 0 || t < a.min {
		a.min = t
	}
	if t > a.max {
		a.max = t
	}
	a.count++
	a.sum += t
}

// Count returns the number of samples.
func (a *LatencyAccum) Count() uint64 { return a.count }

// Sum returns the total of all samples.
func (a *LatencyAccum) Sum() sim.Time { return a.sum }

// Mean returns the average sample, or 0 with no samples.
func (a *LatencyAccum) Mean() sim.Time {
	if a.count == 0 {
		return 0
	}
	return a.sum / sim.Time(a.count)
}

// MeanMicros returns the mean in microseconds as a float64.
func (a *LatencyAccum) MeanMicros() float64 {
	if a.count == 0 {
		return 0
	}
	return float64(a.sum) / float64(a.count) / float64(sim.Microsecond)
}

// Min returns the smallest sample (0 with no samples).
func (a *LatencyAccum) Min() sim.Time {
	if a.count == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest sample (0 with no samples).
func (a *LatencyAccum) Max() sim.Time { return a.max }

// Merge folds other into a.
func (a *LatencyAccum) Merge(other *LatencyAccum) {
	if other.count == 0 {
		return
	}
	if a.count == 0 || other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	a.count += other.count
	a.sum += other.sum
}

// Histogram is a logarithmically bucketed latency histogram covering
// 1 ns to ~1000 s with 10 buckets per decade.
type Histogram struct {
	buckets [121]uint64
	accum   LatencyAccum
}

func bucketFor(t sim.Time) int {
	if t < 1 {
		t = 1
	}
	b := int(math.Floor(10 * math.Log10(float64(t))))
	if b < 0 {
		b = 0
	}
	if b >= 121 {
		b = 120
	}
	return b
}

// Add records one sample.
func (h *Histogram) Add(t sim.Time) {
	h.buckets[bucketFor(t)]++
	h.accum.Add(t)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.accum.Count() }

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.accum.Merge(&other.accum)
}

// Mean returns the mean sample.
func (h *Histogram) Mean() sim.Time { return h.accum.Mean() }

// Quantile returns an approximate quantile (q in [0,1]) using bucket lower
// bounds; adequate for reporting p50/p99 shapes.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.accum.Count() == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.accum.Count()))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			return sim.Time(math.Pow(10, float64(i)/10))
		}
	}
	return h.accum.Max()
}

// HistogramBucket is one exported histogram bucket: the bucket's lower
// bound in nanoseconds and its sample count.
type HistogramBucket struct {
	LowNanos sim.Time `json:"low_ns"`
	Count    uint64   `json:"count"`
}

// Buckets returns the non-empty buckets in ascending order; bucket lower
// bounds follow the 10-per-decade log grid Quantile interpolates on.
// Machine-readable exports serialize this instead of the raw array so a
// sparse histogram stays small.
func (h *Histogram) Buckets() []HistogramBucket {
	var out []HistogramBucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		out = append(out, HistogramBucket{
			LowNanos: sim.Time(math.Pow(10, float64(i)/10)),
			Count:    c,
		})
	}
	return out
}

// Counter is a named monotonic counter map with stable iteration order.
type Counter struct {
	names  []string
	values map[string]uint64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter {
	return &Counter{values: make(map[string]uint64)}
}

// Add increments name by delta.
func (c *Counter) Add(name string, delta uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
		sort.Strings(c.names)
	}
	c.values[name] += delta
}

// Get returns the value of name.
func (c *Counter) Get(name string) uint64 { return c.values[name] }

// Names returns the registered names, sorted.
func (c *Counter) Names() []string { return append([]string(nil), c.names...) }

// Point is one (x, y) sample of a plotted series.
type Point struct {
	X float64
	Y float64
}

// Series is a named line on a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Figure collects the series that regenerate one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries registers and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// CSV renders the figure as CSV with one column per series, joining on X.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteString("\n")
	// Collect the union of X values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			found := false
			for _, p := range s.Points {
				if p.X == x {
					fmt.Fprintf(&b, ",%.3f", p.Y)
					found = true
					break
				}
			}
			if !found {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ASCII renders a crude monospace plot of the figure, good enough to read
// shapes in a terminal.
func (f *Figure) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range f.Series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if first {
		return f.Title + ": (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			cx := int((p.X - minX) / (maxX - minX) * float64(width-1))
			cy := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [y: %s %.1f..%.1f | x: %s %g..%g]\n",
		f.Title, f.YLabel, minY, maxY, f.XLabel, minX, maxX)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "   %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
