package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLatencyAccumBasics(t *testing.T) {
	var a LatencyAccum
	if a.Mean() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatal("zero accum not zero")
	}
	a.Add(10)
	a.Add(20)
	a.Add(30)
	if a.Count() != 3 || a.Sum() != 60 || a.Mean() != 20 {
		t.Fatalf("accum wrong: %+v", a)
	}
	if a.Min() != 10 || a.Max() != 30 {
		t.Fatalf("min/max wrong: %v/%v", a.Min(), a.Max())
	}
}

func TestLatencyAccumMeanMicros(t *testing.T) {
	var a LatencyAccum
	a.Add(1500 * sim.Nanosecond)
	a.Add(2500 * sim.Nanosecond)
	if got := a.MeanMicros(); got != 2.0 {
		t.Fatalf("MeanMicros = %v", got)
	}
	var empty LatencyAccum
	if empty.MeanMicros() != 0 {
		t.Fatal("empty MeanMicros not 0")
	}
}

func TestLatencyAccumMerge(t *testing.T) {
	var a, b LatencyAccum
	a.Add(10)
	b.Add(30)
	b.Add(50)
	a.Merge(&b)
	if a.Count() != 3 || a.Mean() != 30 || a.Min() != 10 || a.Max() != 50 {
		t.Fatalf("merge wrong: count=%d mean=%v", a.Count(), a.Mean())
	}
	var empty LatencyAccum
	a.Merge(&empty) // no-op
	if a.Count() != 3 {
		t.Fatal("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 3 || empty.Min() != 10 {
		t.Fatal("merging into empty wrong")
	}
}

func TestLatencyAccumProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		var a LatencyAccum
		var sum sim.Time
		for _, s := range samples {
			a.Add(sim.Time(s))
			sum += sim.Time(s)
		}
		if len(samples) == 0 {
			return a.Count() == 0
		}
		return a.Sum() == sum && a.Min() <= a.Mean() && a.Mean() <= a.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(100 * sim.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Add(8 * sim.Millisecond)
	}
	if h.Count() != 110 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 50*sim.Microsecond || p50 > 200*sim.Microsecond {
		t.Fatalf("p50 = %v, want ~100us", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 4*sim.Millisecond {
		t.Fatalf("p99 = %v, want ~8ms", p99)
	}
	if h.Quantile(0) > p50 || h.Quantile(1) < p99 {
		t.Fatal("quantiles not monotone")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Add(0)       // clamps to bucket 0
	h.Add(1 << 62) // clamps to last bucket
	if h.Count() != 2 {
		t.Fatal("count wrong")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("b", 2)
	c.Add("a", 1)
	c.Add("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("zzz") != 0 {
		t.Fatal("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestSeriesAndFigureCSV(t *testing.T) {
	fig := NewFigure("Read Latency", "wss", "us")
	s1 := fig.AddSeries("no flash")
	s2 := fig.AddSeries("64G flash")
	s1.Add(10, 100)
	s1.Add(20, 200)
	s2.Add(10, 50)
	csv := fig.CSV()
	if !strings.Contains(csv, "# Read Latency") {
		t.Fatal("missing title")
	}
	if !strings.Contains(csv, "wss,no flash,64G flash") {
		t.Fatalf("missing header: %q", csv)
	}
	if !strings.Contains(csv, "10,100.000,50.000") {
		t.Fatalf("missing joined row: %q", csv)
	}
	if !strings.Contains(csv, "20,200.000,") {
		t.Fatalf("missing gap row: %q", csv)
	}
}

func TestFigureASCII(t *testing.T) {
	fig := NewFigure("T", "x", "y")
	s := fig.AddSeries("s")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out := fig.ASCII(40, 10)
	if !strings.Contains(out, "o") {
		t.Fatal("no points plotted")
	}
	if !strings.Contains(out, "o = s") {
		t.Fatal("no legend")
	}
	empty := NewFigure("E", "x", "y")
	if !strings.Contains(empty.ASCII(40, 10), "no data") {
		t.Fatal("empty figure should say no data")
	}
}

func TestFigureASCIIDegenerate(t *testing.T) {
	fig := NewFigure("T", "x", "y")
	s := fig.AddSeries("s")
	s.Add(5, 7) // single point: min==max on both axes
	out := fig.ASCII(30, 6)
	if !strings.Contains(out, "o") {
		t.Fatal("single point not plotted")
	}
}
